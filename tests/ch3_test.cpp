// CH3 layer tests: the any-source management lists of §3.2.2 / Figure 3
// (unit level), plus integration scenarios through the full stack — message
// ordering with MPI_ANY_SOURCE, intra-node matches cancelling the list
// entry, deferred known-source receives, and the legacy (non-bypass) path.
#include <gtest/gtest.h>

#include <vector>

#include "ch3/anysource.hpp"
#include "mpi/cluster.hpp"

namespace nmx {
namespace {

// ---------------------------------------------------------------------------
// AnySourceLists unit tests
// ---------------------------------------------------------------------------

struct AsFixture : ::testing::Test {
  std::list<ch3::MpidRequest> pool;
  std::vector<ch3::MpidRequest*> released;

  ch3::MpidRequest* req(int src, int tag, int ctx = 0) {
    pool.emplace_back();
    auto* r = &pool.back();
    r->kind = ch3::MpidRequest::Kind::Recv;
    r->peer = src;
    r->tag = tag;
    r->context = ctx;
    return r;
  }
  ch3::AnySourceLists::ReleaseFn collect() {
    return [this](ch3::MpidRequest* r) { released.push_back(r); };
  }
};

TEST_F(AsFixture, EmptyListsBlockNothing) {
  ch3::AnySourceLists as;
  EXPECT_FALSE(as.blocks(0, 7));
  EXPECT_TRUE(as.empty());
}

TEST_F(AsFixture, AnySourceBlocksSameTagOnly) {
  ch3::AnySourceLists as;
  as.add_any_source(req(mpi::ANY_SOURCE, 7));
  EXPECT_TRUE(as.blocks(0, 7));
  EXPECT_FALSE(as.blocks(0, 8));
  EXPECT_FALSE(as.blocks(1, 7));  // different context
}

TEST_F(AsFixture, WildcardTagBlocksWholeContext) {
  ch3::AnySourceLists as;
  as.add_any_source(req(mpi::ANY_SOURCE, mpi::ANY_TAG));
  EXPECT_TRUE(as.blocks(0, 7));
  EXPECT_TRUE(as.blocks(0, 123));
  EXPECT_FALSE(as.blocks(1, 7));
}

TEST_F(AsFixture, ResolveReleasesDeferredUntilNextAnySource) {
  ch3::AnySourceLists as;
  auto* as1 = req(mpi::ANY_SOURCE, 7);
  as.add_any_source(as1);
  auto* r1 = req(3, 7);
  auto* r2 = req(4, 7);
  as.defer(r1);
  as.defer(r2);
  auto* as2 = req(mpi::ANY_SOURCE, 7);
  as.add_any_source(as2);
  auto* r3 = req(5, 7);
  as.defer(r3);

  as.resolve(as1, collect());
  // r1, r2 released; as2 becomes the head; r3 stays deferred behind it.
  EXPECT_EQ(released, (std::vector<ch3::MpidRequest*>{r1, r2}));
  EXPECT_TRUE(as.blocks(0, 7));
  ASSERT_EQ(as.heads().size(), 1u);
  EXPECT_EQ(as.heads()[0], as2);

  released.clear();
  as.resolve(as2, collect());
  EXPECT_EQ(released, (std::vector<ch3::MpidRequest*>{r3}));
  EXPECT_FALSE(as.blocks(0, 7));
  EXPECT_TRUE(as.empty());
}

TEST_F(AsFixture, HeadsAreOrderedByPostTime) {
  ch3::AnySourceLists as;
  auto* a = req(mpi::ANY_SOURCE, 7);
  auto* b = req(mpi::ANY_SOURCE, 3);
  as.add_any_source(a);
  as.add_any_source(b);
  auto heads = as.heads();
  ASSERT_EQ(heads.size(), 2u);
  EXPECT_EQ(heads[0], a);
  EXPECT_EQ(heads[1], b);
}

// ---------------------------------------------------------------------------
// Full-stack integration
// ---------------------------------------------------------------------------

mpi::ClusterConfig stack_cfg(int nodes, int procs, bool bypass = true) {
  mpi::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.procs = procs;
  cfg.stack = mpi::StackKind::Mpich2Nmad;
  cfg.bypass = bypass;
  return cfg;
}

TEST(AnySourceIntegration, ReceivesFromTwoRemoteSenders) {
  mpi::Cluster cluster(stack_cfg(3, 3));
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      int seen[2] = {0, 0};
      for (int i = 0; i < 2; ++i) {
        int v = -1;
        auto st = c.recv(&v, sizeof(v), mpi::ANY_SOURCE, 7);
        EXPECT_EQ(v, st.source * 100);
        EXPECT_EQ(st.tag, 7);
        seen[st.source - 1]++;
      }
      EXPECT_EQ(seen[0], 1);
      EXPECT_EQ(seen[1], 1);
    } else {
      int v = c.rank() * 100;
      c.send(&v, sizeof(v), 0, 7);
    }
  });
}

TEST(AnySourceIntegration, OrderingWithLaterKnownSourceReceive) {
  // AS(tag) posted first, then recv(src=1, tag). Sender 1 sends twice.
  // MPI ordering: the first message must match the any-source request.
  mpi::Cluster cluster(stack_cfg(2, 2));
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      int a = -1, b = -1;
      mpi::Request r_as = c.irecv(&a, sizeof(a), mpi::ANY_SOURCE, 7);
      mpi::Request r_known = c.irecv(&b, sizeof(b), 1, 7);
      auto st = c.wait(r_as);
      c.wait(r_known);
      EXPECT_EQ(a, 111);  // first send goes to the earlier (any-source) recv
      EXPECT_EQ(b, 222);
      EXPECT_EQ(st.source, 1);
    } else {
      int v1 = 111, v2 = 222;
      c.send(&v1, sizeof(v1), 0, 7);
      c.send(&v2, sizeof(v2), 0, 7);
    }
  });
}

TEST(AnySourceIntegration, IntraNodeMessageMatchesAndReleasesDeferred) {
  // Rank 0, rank 1 on node 0; rank 2 remote. AS recv matches the shm
  // message from rank 1; the deferred known-source recv for rank 2 is then
  // posted and completes.
  mpi::ClusterConfig cfg = stack_cfg(2, 3);
  cfg.nodes = 2;  // block mapping: ranks 0,1 on node 0; rank 2 on node 1
  mpi::Cluster cluster(cfg);
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      int a = -1, b = -1;
      mpi::Request r_as = c.irecv(&a, sizeof(a), mpi::ANY_SOURCE, 7);
      mpi::Request r2 = c.irecv(&b, sizeof(b), 2, 7);
      // Tell the senders to go (they are ordered by these sends).
      char go = 1;
      c.send(&go, 1, 1, 1);
      c.send(&go, 1, 2, 1);
      auto st = c.wait(r_as);
      c.wait(r2);
      EXPECT_EQ(st.source, 1);  // shm sender arrives first (lower latency)
      EXPECT_EQ(a, 100);
      EXPECT_EQ(b, 200);
    } else if (c.rank() == 1) {
      char go;
      c.recv(&go, 1, 0, 1);
      int v = 100;
      c.send(&v, sizeof(v), 0, 7);
    } else {
      char go;
      c.recv(&go, 1, 0, 1);
      c.compute(20e-6);  // let the shm message win the race deterministically
      int v = 200;
      c.send(&v, sizeof(v), 0, 7);
    }
  });
}

TEST(AnySourceIntegration, KnownSourceAnyTagReceives) {
  // Regression: a known remote source with MPI_ANY_TAG cannot be posted to
  // NewMadeleine's exact matching — it must go through the wildcard lists.
  mpi::Cluster cluster(stack_cfg(2, 2));
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        int v = -1;
        auto st = c.recv(&v, sizeof(v), 1, mpi::ANY_TAG);
        EXPECT_EQ(st.tag, 50 + i);
        EXPECT_EQ(v, i * 3);
        EXPECT_EQ(st.source, 1);
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        int v = i * 3;
        c.send(&v, sizeof(v), 0, 50 + i);
      }
    }
  });
}

TEST(AnySourceIntegration, AnyTagWildcardReceives) {
  mpi::Cluster cluster(stack_cfg(2, 2));
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 3; ++i) {
        int v = -1;
        auto st = c.recv(&v, sizeof(v), mpi::ANY_SOURCE, mpi::ANY_TAG);
        EXPECT_EQ(st.tag, 10 + i);  // per-pair FIFO order preserved
        EXPECT_EQ(v, 1000 + i);
      }
    } else {
      for (int i = 0; i < 3; ++i) {
        int v = 1000 + i;
        c.send(&v, sizeof(v), 0, 10 + i);
      }
    }
  });
}

TEST(AnySourceIntegration, ConstantLatencyPenalty) {
  // §4.1.1: the any-source path costs a constant ~300 ns, independent of
  // message size.
  auto one_way = [](bool any_source, std::size_t size) {
    mpi::Cluster cluster(stack_cfg(2, 2));
    double t = 0;
    cluster.run([&](mpi::Comm& c) {
      std::vector<std::byte> buf(size);
      const int src = any_source ? mpi::ANY_SOURCE : 1 - c.rank();
      for (int i = 0; i < 2; ++i) {  // warmup + measured
        const double t0 = c.wtime();
        if (c.rank() == 0) {
          c.send(buf.data(), size, 1, 0);
          c.recv(buf.data(), size, src, 0);
        } else {
          c.recv(buf.data(), size, src, 0);
          c.send(buf.data(), size, 1 - c.rank(), 0);
        }
        if (c.rank() == 0 && i == 1) t = (c.wtime() - t0) / 2;
      }
    });
    return t;
  };
  const double gap_small = one_way(true, 8) - one_way(false, 8);
  const double gap_large = one_way(true, 16384) - one_way(false, 16384);
  EXPECT_NEAR(gap_small, 0.3e-6, 0.05e-6);
  EXPECT_NEAR(gap_large, 0.3e-6, 0.05e-6);
}

// ---------------------------------------------------------------------------
// Legacy netmod path (bypass = false)
// ---------------------------------------------------------------------------

class LegacyPath : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LegacyPath, CarriesBytesLikeBypass) {
  mpi::Cluster cluster(stack_cfg(2, 2, /*bypass=*/false));
  const std::size_t n = GetParam();
  std::vector<std::byte> msg(n);
  for (std::size_t i = 0; i < n; ++i) msg[i] = static_cast<std::byte>(i & 0xff);
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      c.send(msg.data(), msg.size(), 1, 3);
    } else {
      std::vector<std::byte> in(n);
      auto st = c.recv(in.data(), in.size(), 0, 3);
      EXPECT_EQ(st.count, n);
      EXPECT_EQ(in, msg);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, LegacyPath,
                         ::testing::Values(0, 1, 1000, 31999, 32001, 262144, 2097152));

TEST(LegacyPath, AnySourceWorksThroughCentralQueues) {
  mpi::Cluster cluster(stack_cfg(3, 3, /*bypass=*/false));
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 2; ++i) {
        int v = -1;
        auto st = c.recv(&v, sizeof(v), mpi::ANY_SOURCE, 7);
        EXPECT_EQ(v, st.source * 10);
      }
    } else {
      int v = c.rank() * 10;
      c.send(&v, sizeof(v), 0, 7);
    }
  });
}

TEST(LegacyPath, NestedHandshakeCostsMoreThanBypass) {
  // Figure 2: the legacy path runs the CH3 rendezvous *and* NewMadeleine's
  // internal rendezvous — large transfers must be measurably slower.
  auto transfer_time = [](bool bypass) {
    mpi::Cluster cluster(stack_cfg(2, 2, bypass));
    double t = 0;
    cluster.run([&](mpi::Comm& c) {
      // Medium rendezvous size: the extra handshake round trip is not yet
      // amortized by the data transfer.
      std::vector<std::byte> buf(96 * 1024);
      const double t0 = c.wtime();
      if (c.rank() == 0) {
        std::vector<std::byte> in(buf.size());
        c.send(buf.data(), buf.size(), 1, 0);
        c.recv(in.data(), in.size(), 1, 1);
        t = (c.wtime() - t0) / 2;
      } else {
        std::vector<std::byte> in(buf.size());
        c.recv(in.data(), in.size(), 0, 0);
        c.send(buf.data(), buf.size(), 0, 1);
      }
    });
    return t;
  };
  const double legacy = transfer_time(false);
  const double bypass = transfer_time(true);
  EXPECT_GT(legacy, bypass * 1.02);  // at least one extra handshake round
}

}  // namespace
}  // namespace nmx
