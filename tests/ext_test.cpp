// Tests for the future-work extensions (§5 of the paper): derived
// datatypes, MPI-2 RMA (fence-synchronized one-sided ops), the IS kernel
// the paper had to exclude, the extra collectives (scan,
// reduce_scatter_block, alltoallv) and iprobe.
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/cluster.hpp"
#include "mpi/datatype.hpp"
#include "mpi/rma.hpp"
#include "nas/nas.hpp"
#include "sim/rng.hpp"

namespace nmx {
namespace {

mpi::ClusterConfig cfg_stack(mpi::StackKind stack, int nodes = 2, int procs = 2) {
  mpi::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.procs = procs;
  cfg.stack = stack;
  return cfg;
}

// ---------------------------------------------------------------------------
// Datatype unit tests
// ---------------------------------------------------------------------------

TEST(Datatype, ContiguousIsTrivial) {
  auto d = mpi::Datatype::contiguous(128);
  EXPECT_TRUE(d.contiguous_layout());
  EXPECT_EQ(d.packed_size(), 128u);
  EXPECT_EQ(d.extent(), 128u);
}

TEST(Datatype, VectorLayout) {
  auto d = mpi::Datatype::vector(3, 8, 32);  // |xxxxxxxx........|x3
  EXPECT_FALSE(d.contiguous_layout());
  EXPECT_EQ(d.packed_size(), 24u);
  EXPECT_EQ(d.extent(), 72u);  // 2*32 + 8
  ASSERT_EQ(d.segments().size(), 3u);
  EXPECT_EQ(d.segments()[2].offset, 64u);
}

TEST(Datatype, PackUnpackRoundTrip) {
  auto d = mpi::Datatype::vector(4, 3, 10);
  std::vector<std::byte> src(d.extent());
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = static_cast<std::byte>(i);
  std::vector<std::byte> packed(d.packed_size());
  d.pack(src.data(), packed.data());
  EXPECT_EQ(packed[3], static_cast<std::byte>(10));  // second block starts at 10
  std::vector<std::byte> dst(d.extent(), std::byte{0xff});
  d.unpack(packed.data(), dst.data());
  for (const auto& s : d.segments()) {
    for (std::size_t k = 0; k < s.length; ++k) EXPECT_EQ(dst[s.offset + k], src[s.offset + k]);
  }
}

TEST(Datatype, IndexedAndReplicate) {
  auto base = mpi::Datatype::indexed({{0, 4}, {16, 4}});
  EXPECT_EQ(base.packed_size(), 8u);
  EXPECT_EQ(base.extent(), 20u);
  auto arr = base.replicate(3);
  EXPECT_EQ(arr.packed_size(), 24u);
  EXPECT_EQ(arr.extent(), 60u);
  EXPECT_EQ(arr.segments()[2].offset, 20u);  // second replica's first segment
}

class DatatypeTransfer : public ::testing::TestWithParam<mpi::StackKind> {};

TEST_P(DatatypeTransfer, StridedColumnExchange) {
  // Send a "matrix column" (classic vector datatype use) between nodes.
  mpi::Cluster cluster(cfg_stack(GetParam()));
  constexpr std::size_t kRows = 64, kCols = 32;
  auto col = mpi::Datatype::vector(kRows, sizeof(double), kCols * sizeof(double));
  cluster.run([&](mpi::Comm& c) {
    std::vector<double> m(kRows * kCols);
    if (c.rank() == 0) {
      for (std::size_t r = 0; r < kRows; ++r) m[r * kCols + 5] = 100.0 + static_cast<double>(r);
      c.send(m.data() + 5, col, 1, 9);  // column 5
    } else {
      std::vector<double> out(kRows * kCols, -1.0);
      auto st = c.recv(out.data() + 5, col, 0, 9);
      EXPECT_EQ(st.count, kRows * sizeof(double));
      for (std::size_t r = 0; r < kRows; ++r) {
        EXPECT_DOUBLE_EQ(out[r * kCols + 5], 100.0 + static_cast<double>(r));
      }
      EXPECT_DOUBLE_EQ(out[0], -1.0);  // untouched outside the column
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Stacks, DatatypeTransfer,
                         ::testing::Values(mpi::StackKind::Mpich2Nmad, mpi::StackKind::Mvapich2),
                         [](const auto& info) {
                           std::string s = mpi::to_string(info.param);
                           std::erase(s, '-');
                           return s;
                         });

TEST(DatatypeTiming, NmadSkipsThePackCopy) {
  // The paper's hypothesis (§5): NewMadeleine's gather machinery absorbs
  // non-contiguous layouts; pack-based stacks pay an extra copy per side.
  auto one_way = [](mpi::StackKind stack) {
    mpi::Cluster cluster(cfg_stack(stack));
    auto dt = mpi::Datatype::vector(512, 64, 128);  // 32 KiB packed
    double t = 0;
    cluster.run([&](mpi::Comm& c) {
      std::vector<std::byte> buf(dt.extent());
      for (int i = 0; i < 2; ++i) {  // warmup + measured
        const double t0 = c.wtime();
        if (c.rank() == 0) {
          c.send(buf.data(), dt, 1, 0);
          c.recv(buf.data(), dt, 1, 0);
        } else {
          c.recv(buf.data(), dt, 0, 0);
          c.send(buf.data(), dt, 0, 0);
        }
        if (c.rank() == 0 && i == 1) t = (c.wtime() - t0) / 2;
      }
    });
    return t;
  };
  const double nmad = one_way(mpi::StackKind::Mpich2Nmad);
  const double mvapich = one_way(mpi::StackKind::Mvapich2);
  // MVAPICH2 wins contiguous 32K transfers outright (Fig 4b), so losing
  // here isolates the pack penalty.
  EXPECT_GT(mvapich, nmad);
}

// ---------------------------------------------------------------------------
// RMA
// ---------------------------------------------------------------------------

class Rma : public ::testing::TestWithParam<mpi::StackKind> {};

TEST_P(Rma, PutGetAccumulateRoundTrip) {
  mpi::Cluster cluster(cfg_stack(GetParam(), 2, 4));
  cluster.run([&](mpi::Comm& c) {
    std::vector<double> win_mem(64, 0.0);
    mpi::Window win(c, win_mem.data(), win_mem.size() * sizeof(double));

    // Epoch 1: everyone puts its rank into slot `rank` of rank 0's window.
    const double me = c.rank();
    win.put(&me, sizeof(double), 0, static_cast<std::size_t>(c.rank()) * sizeof(double));
    win.fence();
    if (c.rank() == 0) {
      for (int p = 0; p < c.size(); ++p) EXPECT_DOUBLE_EQ(win_mem[static_cast<std::size_t>(p)], p);
    }

    // Epoch 2: everyone gets rank 0's slot 1.
    double got = -1;
    win.get(&got, sizeof(double), 0, sizeof(double));
    win.fence();
    EXPECT_DOUBLE_EQ(got, 1.0);

    // Epoch 3: concurrent accumulate into one location (sum commutes).
    const double one = 1.0;
    win.accumulate(&one, 1, 2, 0);
    win.fence();
    if (c.rank() == 2) {
      EXPECT_DOUBLE_EQ(win_mem[0], c.size());
    }

    // Epoch 4: empty fence is legal.
    win.fence();
  });
}

INSTANTIATE_TEST_SUITE_P(Stacks, Rma,
                         ::testing::Values(mpi::StackKind::Mpich2Nmad, mpi::StackKind::Mvapich2,
                                           mpi::StackKind::OpenMpiBtlIb),
                         [](const auto& info) {
                           std::string s = mpi::to_string(info.param);
                           std::erase(s, '-');
                           return s;
                         });

TEST(Rma, LargePutUsesRendezvousPath) {
  mpi::Cluster cluster(cfg_stack(mpi::StackKind::Mpich2Nmad));
  cluster.run([&](mpi::Comm& c) {
    std::vector<std::byte> win_mem(1 << 20);
    mpi::Window win(c, win_mem.data(), win_mem.size());
    if (c.rank() == 0) {
      std::vector<std::byte> data(1 << 20);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i * 7);
      win.put(data.data(), data.size(), 1, 0);
    }
    win.fence();
    if (c.rank() == 1) {
      for (std::size_t i = 0; i < win_mem.size(); i += 4097) {
        ASSERT_EQ(win_mem[i], static_cast<std::byte>(i * 7));
      }
    }
  });
}

TEST(Rma, RandomizedOpsMatchReference) {
  // Property: disjoint random puts + commutative accumulates + gets across
  // ranks equal a locally computed reference after each fence.
  mpi::Cluster cluster(cfg_stack(mpi::StackKind::Mpich2Nmad, 2, 4));
  constexpr std::size_t kSlots = 128;
  cluster.run([&](mpi::Comm& c) {
    const int P = c.size();
    std::vector<double> win_mem(kSlots, 0.0);
    mpi::Window win(c, win_mem.data(), kSlots * sizeof(double));
    // Each origin owns a disjoint slot range per target: slots [r*32, r*32+32).
    for (int epoch = 0; epoch < 3; ++epoch) {
      sim::Xoshiro256 rng(static_cast<std::uint64_t>(c.rank() * 97 + epoch));
      for (int i = 0; i < 8; ++i) {
        const int target = static_cast<int>(rng.below(static_cast<std::uint64_t>(P)));
        const std::size_t slot =
            static_cast<std::size_t>(c.rank()) * 32 + rng.below(32);
        const double v = c.rank() * 1000.0 + i;
        win.put(&v, sizeof(double), target, slot * sizeof(double));
      }
      win.fence();
    }
    // Verify: slot ranges written only by their owner, with that owner's
    // last value ordering unknown — check the owner prefix only.
    for (std::size_t s = 0; s < kSlots; ++s) {
      if (win_mem[s] != 0.0) {
        const int owner = static_cast<int>(s / 32);
        EXPECT_GE(win_mem[s], owner * 1000.0);
        EXPECT_LT(win_mem[s], owner * 1000.0 + 8);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Extra collectives + iprobe
// ---------------------------------------------------------------------------

TEST(ExtCollectives, ScanComputesPrefixSums) {
  mpi::Cluster cluster(cfg_stack(mpi::StackKind::Mpich2Nmad, 3, 6));
  cluster.run([&](mpi::Comm& c) {
    double v = c.rank() + 1.0;
    double out = 0;
    c.scan(&v, &out, 1, mpi::ReduceOp::Sum);
    double expect = 0;
    for (int p = 0; p <= c.rank(); ++p) expect += p + 1.0;
    EXPECT_DOUBLE_EQ(out, expect);
  });
}

TEST(ExtCollectives, ReduceScatterBlock) {
  mpi::Cluster cluster(cfg_stack(mpi::StackKind::Mpich2Nmad, 2, 4));
  cluster.run([&](mpi::Comm& c) {
    const int P = c.size();
    std::vector<double> in(static_cast<std::size_t>(P) * 2);
    for (int p = 0; p < P; ++p) {
      in[static_cast<std::size_t>(p) * 2] = c.rank() + p;
      in[static_cast<std::size_t>(p) * 2 + 1] = 1.0;
    }
    double out[2] = {0, 0};
    c.reduce_scatter_block(in.data(), out, 2, mpi::ReduceOp::Sum);
    double expect = 0;
    for (int r = 0; r < P; ++r) expect += r + c.rank();
    EXPECT_DOUBLE_EQ(out[0], expect);
    EXPECT_DOUBLE_EQ(out[1], P);
  });
}

TEST(ExtCollectives, AlltoallvUnevenBlocks) {
  mpi::Cluster cluster(cfg_stack(mpi::StackKind::Mpich2Nmad, 2, 4));
  cluster.run([&](mpi::Comm& c) {
    const int P = c.size();
    // rank r sends (d+1) doubles of value r*10+d to rank d.
    std::vector<std::size_t> scounts(static_cast<std::size_t>(P)),
        sdispls(static_cast<std::size_t>(P)), rcounts(static_cast<std::size_t>(P)),
        rdispls(static_cast<std::size_t>(P));
    std::size_t soff = 0, roff = 0;
    for (int d = 0; d < P; ++d) {
      scounts[static_cast<std::size_t>(d)] = static_cast<std::size_t>(d + 1) * sizeof(double);
      sdispls[static_cast<std::size_t>(d)] = soff;
      soff += scounts[static_cast<std::size_t>(d)];
      rcounts[static_cast<std::size_t>(d)] = static_cast<std::size_t>(c.rank() + 1) * sizeof(double);
      rdispls[static_cast<std::size_t>(d)] = roff;
      roff += rcounts[static_cast<std::size_t>(d)];
    }
    std::vector<double> send(soff / sizeof(double)), recv(roff / sizeof(double), -1);
    for (int d = 0; d < P; ++d) {
      for (int k = 0; k <= d; ++k) {
        send[sdispls[static_cast<std::size_t>(d)] / sizeof(double) + static_cast<std::size_t>(k)] =
            c.rank() * 10.0 + d;
      }
    }
    c.alltoallv(send.data(), scounts.data(), sdispls.data(), recv.data(), rcounts.data(),
                rdispls.data());
    for (int s = 0; s < P; ++s) {
      for (int k = 0; k <= c.rank(); ++k) {
        EXPECT_DOUBLE_EQ(
            recv[rdispls[static_cast<std::size_t>(s)] / sizeof(double) + static_cast<std::size_t>(k)],
            s * 10.0 + c.rank());
      }
    }
  });
}

TEST(Iprobe, SeesUnexpectedWithoutConsuming) {
  mpi::Cluster cluster(cfg_stack(mpi::StackKind::Mpich2Nmad));
  cluster.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      int v = 5;
      c.send(&v, sizeof(v), 1, 42);
    } else {
      c.compute(20e-6);  // let the message land unexpected
      auto st = c.iprobe(mpi::ANY_SOURCE, mpi::ANY_TAG);
      ASSERT_TRUE(st.has_value());
      EXPECT_EQ(st->source, 0);
      EXPECT_EQ(st->tag, 42);
      EXPECT_EQ(st->count, sizeof(int));
      EXPECT_TRUE(c.iprobe(0, 42).has_value());      // still there
      EXPECT_FALSE(c.iprobe(0, 43).has_value());     // no such tag
      int v = -1;
      c.recv(&v, sizeof(v), st->source, st->tag);
      EXPECT_EQ(v, 5);
      EXPECT_FALSE(c.iprobe(mpi::ANY_SOURCE, mpi::ANY_TAG).has_value());  // consumed
    }
  });
}

// ---------------------------------------------------------------------------
// IS — the kernel the paper excluded
// ---------------------------------------------------------------------------

TEST(IsKernel, RunsOnAllStacksClassS) {
  for (auto stack : {mpi::StackKind::Mpich2Nmad, mpi::StackKind::Mvapich2,
                     mpi::StackKind::OpenMpiBtlIb}) {
    mpi::Cluster cluster(cfg_stack(stack, 4, 8));
    nas::NasConfig cfg;
    cfg.cls = nas::NasClass::S;
    const auto r = nas::run_nas(cluster, "IS", cfg);
    EXPECT_GT(r.seconds, 0.0) << mpi::to_string(stack);
  }
}

TEST(IsKernel, ScalesWithProcesses) {
  nas::NasConfig cfg;
  cfg.cls = nas::NasClass::S;
  mpi::Cluster c4(cfg_stack(mpi::StackKind::Mpich2Nmad, 4, 4));
  mpi::Cluster c16(cfg_stack(mpi::StackKind::Mpich2Nmad, 8, 16));
  EXPECT_LT(nas::run_nas(c16, "IS", cfg).seconds, nas::run_nas(c4, "IS", cfg).seconds);
}

}  // namespace
}  // namespace nmx
